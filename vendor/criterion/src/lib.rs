//! A minimal, dependency-free, offline stand-in for the `criterion` crate.
//!
//! This workspace builds in environments with no registry access, so the
//! real `criterion` cannot be fetched. This shim implements the API subset
//! the workspace's benches use — `Criterion::bench_function`, the
//! `sample_size`/`measurement_time`/`warm_up_time` builders,
//! `Bencher::iter`/`iter_with_setup`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — measuring wall-clock time
//! with `std::time::Instant` and printing mean/min per-iteration timings.
//!
//! It does no statistical outlier analysis and writes no HTML reports; it
//! exists so `cargo bench` runs offline and prints comparable numbers.

use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value helper, matching `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark runner configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be nonzero");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before measurement begins.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark: warms up, calibrates an iteration count that
    /// roughly fills `measurement_time / sample_size` per sample, then
    /// measures `sample_size` samples and prints mean and min times.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run once to touch caches, then repeat until the warm-up
        // window elapses.
        let warm_start = Instant::now();
        let mut probe_time;
        loop {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            probe_time = b.elapsed.max(Duration::from_nanos(1));
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }

        // Calibrate iterations per sample from the last probe.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = (per_sample / probe_time.as_secs_f64()).clamp(1.0, 1e9) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "bench {id:<44} mean {:>12}  min {:>12}  ({} samples x {} iters)",
            fmt_time(mean),
            fmt_time(min),
            self.sample_size,
            iters
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` with a fresh un-timed `setup()` input per iteration.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed += total;
    }
}

/// Declares a group of benchmark functions, with or without a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_chains() {
        let mut acc = 0u64;
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(4))
            .warm_up_time(Duration::from_millis(1))
            .bench_function("noop", |b| b.iter(|| 1u32 + 1))
            .bench_function("setup", |b| {
                b.iter_with_setup(
                    || 3u64,
                    |x| {
                        acc = acc.wrapping_add(x);
                        acc
                    },
                )
            });
        assert!(acc > 0);
    }

    criterion_group!(simple_group, trivial_bench);

    fn trivial_bench(c: &mut Criterion) {
        c.bench_function("trivial", |b| b.iter(|| black_box(2u32).pow(2)));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        // Run the group body manually with a shrunk config.
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1));
        trivial_bench(&mut c);
        // The generated group fn exists and is callable (not invoked here to
        // avoid the default 2 s measurement window in unit tests).
        let _ = simple_group as fn();
    }
}
