//! A minimal, dependency-free, offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no registry access, so the
//! real `proptest` cannot be fetched. This shim implements exactly the API
//! subset the workspace's property tests use — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, range/tuple/`prop_map` strategies, and
//! `proptest::collection::vec` — with deterministic case generation (the
//! per-test RNG is seeded from the test name, so failures reproduce across
//! runs).
//!
//! Differences from the real crate: no shrinking, no persisted failure
//! regressions, and strategies are sampled uniformly. For the invariants
//! tested here those features are conveniences, not prerequisites.

/// Test-runner types: configuration, error/result types, and the
/// deterministic RNG driving case generation.
pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a single generated case failed.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-case outcome; property bodies may `return Ok(())` early.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// SplitMix64 generator: tiny, fast, and statistically fine for test
    /// input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            Self(seed)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn uniform(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    /// FNV-1a hash of a test name, used as that test's RNG seed so case
    /// streams are stable run-to-run but distinct per test.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1_0000_0000_01b3);
        }
        h
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.uniform() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.uniform() as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length interval for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The commonly imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property body, failing the current case
/// (not the whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::new(
                $crate::test_runner::seed_from_name(stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let f = (-1.5f64..=2.5).generate(&mut rng);
            assert!((-1.5..=2.5).contains(&f));
            let b = (1u8..=5).generate(&mut rng);
            assert!((1..=5).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_and_prop_map_compose() {
        let mut rng = TestRng::new(2);
        let strat =
            crate::collection::vec((0.1f64..1.0, 0u64..10), 2..5).prop_map(|pairs| pairs.len());
        for _ in 0..100 {
            let n = strat.generate(&mut rng);
            assert!((2..5).contains(&n));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut rng = TestRng::new(9);
            (0..16).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::new(9);
            (0..16).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself works end to end, including early `return Ok`.
        #[test]
        fn macro_smoke(x in 0u64..100, ys in crate::collection::vec(0.0f64..1.0, 1..4)) {
            if ys.is_empty() {
                return Ok(());
            }
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
        }
    }
}
