//! End-to-end integration tests: the full train → prune → evaluate
//! pipeline at smoke scale, checking the paper's qualitative orderings.

use pruneval::{build_family, preset, Distribution, Scale};
use pv_metrics::noise_similarity;
use pv_prune::WeightThresholding;
use pv_tensor::Rng;

fn smoke_family() -> pruneval::StudyFamily {
    // enough training to actually learn at smoke scale
    let mut cfg = preset("mlp", Scale::Smoke)
        .expect("known preset")
        .with_epochs(16);
    cfg.n_train = 512;
    cfg.cycles = 4;
    build_family(&cfg, &WeightThresholding, 0, None)
}

#[test]
fn parent_learns_and_pruned_models_track_targets() {
    let mut fam = smoke_family();
    let test = fam.test_set.clone();
    let parent_err = pruneval::eval_error_pct(&mut fam.parent, &test);
    assert!(parent_err < 30.0, "parent failed to learn ({parent_err}%)");
    // prune ratios increase monotonically and approach the schedule
    for pair in fam.pruned.windows(2) {
        assert!(pair[0].achieved_ratio < pair[1].achieved_ratio);
    }
    let last = fam.pruned.last().expect("cycles ran");
    assert!((last.achieved_ratio - last.target_ratio).abs() < 0.05);
    assert!(last.flop_reduction > 0.5);
}

#[test]
fn pruned_networks_are_functionally_closer_to_parent_than_separate() {
    // Section 4's headline: prediction agreement under noise is higher for
    // pruned children than for a separately trained network.
    let mut fam = smoke_family();
    let images = pruneval::inputs_for(&fam.parent, &fam.test_set.clone());
    let mut rng = Rng::new(3);
    let first_pruned = &mut fam.pruned[0].network;
    let sim_pruned = noise_similarity(&mut fam.parent, first_pruned, &images, 0.05, 3, &mut rng);
    let mut rng = Rng::new(3);
    let sim_separate = noise_similarity(
        &mut fam.parent,
        &mut fam.separate,
        &images,
        0.05,
        3,
        &mut rng,
    );
    assert!(
        sim_pruned.matching_predictions >= sim_separate.matching_predictions,
        "pruned {} vs separate {}",
        sim_pruned.matching_predictions,
        sim_separate.matching_predictions
    );
    assert!(sim_pruned.softmax_l2 <= sim_separate.softmax_l2 + 0.05);
}

#[test]
fn heavy_shift_does_not_increase_prune_potential() {
    let mut fam = smoke_family();
    let delta = 2.0;
    let nominal = fam.potential_on(&Distribution::Nominal, delta, 1);
    let noisy = fam.potential_on(&Distribution::Noise(0.6), delta, 1);
    assert!(
        noisy <= nominal + 1e-9,
        "potential under heavy noise ({noisy}) exceeds nominal ({nominal})"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let mut a = smoke_family();
    let mut b = smoke_family();
    let test = a.test_set.clone();
    assert_eq!(
        pruneval::eval_error_pct(&mut a.parent, &test),
        pruneval::eval_error_pct(&mut b.parent, &test)
    );
    for (pa, pb) in a.pruned.iter_mut().zip(&mut b.pruned) {
        assert_eq!(pa.achieved_ratio, pb.achieved_ratio);
        assert_eq!(
            pruneval::eval_error_pct(&mut pa.network, &test),
            pruneval::eval_error_pct(&mut pb.network, &test)
        );
    }
}

#[test]
fn curves_share_the_ratio_grid_across_distributions() {
    let mut fam = smoke_family();
    let nominal = fam.curve_on(&Distribution::Nominal, 1);
    let shifted = fam.curve_on(&Distribution::Noise(0.2), 1);
    assert_eq!(nominal.points.len(), shifted.points.len());
    for (a, b) in nominal.points.iter().zip(&shifted.points) {
        assert!((a.0 - b.0).abs() < 1e-12);
    }
    // excess-error series is computable on that grid
    let series = fam.excess_error_series(&[Distribution::Noise(0.2)], 1);
    assert_eq!(series.len(), nominal.points.len());
}
