//! PVSR/v1 protocol-hardening tests, the wire sibling of
//! `checkpoint_roundtrip.rs`: every way a frame can be damaged —
//! truncation, bad magic, a foreign version, a flipped CRC bit, a hostile
//! length prefix, dims that disagree with the payload — must surface as a
//! typed [`Error::Protocol`] (never a panic, never an allocation sized by
//! the attacker), and a live server must answer malformed bytes with a
//! `BadRequest` frame or a clean close, then keep serving well-formed
//! peers.

use pruneval::Error;
use pv_nn::models;
use pv_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    Request, Response,
};
use pv_serve::{serve, Client, ModelRegistry, ServerConfig, Status, MAX_FRAME_BYTES};
use pv_tensor::Tensor;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn sample_frame() -> Vec<u8> {
    encode_request(&Request {
        model: "parent".into(),
        input: Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect()),
    })
}

/// The body of a frame (everything after the u32 length prefix).
fn body(frame: &[u8]) -> Vec<u8> {
    frame[4..].to_vec()
}

fn expect_protocol_err(result: Result<Request, Error>, what: &str) {
    match result {
        Err(Error::Protocol(msg)) => assert!(!msg.is_empty(), "{what}: empty diagnostic"),
        other => panic!("{what}: expected Error::Protocol, got {other:?}"),
    }
}

#[test]
fn truncation_at_every_boundary_is_a_typed_error() {
    let full = body(&sample_frame());
    // chopping the body anywhere — header, dims, payload, footer — must
    // yield Error::Protocol, never a panic or a bogus success
    for cut in 0..full.len() {
        let result = decode_request(&full[..cut]);
        expect_protocol_err(result, &format!("truncated to {cut} bytes"));
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut b = body(&sample_frame());
    b[0..4].copy_from_slice(b"PVCK"); // right family, wrong format
    reseal(&mut b);
    expect_protocol_err(decode_request(&b), "bad magic");
}

#[test]
fn foreign_version_is_rejected() {
    let mut b = body(&sample_frame());
    b[4] = 2; // a future PVSR version this reader cannot decode
    reseal(&mut b);
    match decode_request(&b) {
        Err(Error::Protocol(msg)) => assert!(msg.contains("version"), "{msg}"),
        other => panic!("expected version rejection, got {other:?}"),
    }
}

#[test]
fn single_bit_flip_fails_the_crc() {
    let pristine = body(&sample_frame());
    // flip one bit in a spread of positions, covering header, model id,
    // dims, payload, and the CRC footer itself
    for pos in [0, 5, 8, 12, pristine.len() / 2, pristine.len() - 1] {
        let mut b = pristine.clone();
        b[pos] ^= 0x10;
        let result = decode_request(&b);
        expect_protocol_err(result, &format!("bit flip at byte {pos}"));
    }
}

#[test]
fn dims_payload_disagreement_is_rejected() {
    // dims say [2,3] (6 floats) but carry only 5: rewrite the dim and reseal
    let req = Request {
        model: "m".into(),
        input: Tensor::from_vec(vec![5], (0..5).map(|i| i as f32).collect()),
    };
    let mut b = body(&encode_request(&req));
    // body: magic(4) version(1) kind(1) namelen(2) name(1) ndim(1) dim0(4)...
    let dim0_at = 4 + 1 + 1 + 2 + 1 + 1;
    b[dim0_at..dim0_at + 4].copy_from_slice(&6u32.to_le_bytes());
    reseal(&mut b);
    expect_protocol_err(decode_request(&b), "dims exceed payload");
}

#[test]
fn overflowing_and_empty_dims_are_rejected() {
    // ndim=2 with dims u32::MAX × u32::MAX must fail in checked
    // multiplication, not allocate
    let mut b = header_with(&[0u8]); // kind 0 = request
    b.extend_from_slice(&1u16.to_le_bytes());
    b.push(b'm');
    b.push(2); // ndim
    b.extend_from_slice(&u32::MAX.to_le_bytes());
    b.extend_from_slice(&u32::MAX.to_le_bytes());
    let b = sealed(b);
    match decode_request(&b) {
        Err(Error::Protocol(msg)) => assert!(msg.contains("overflow"), "{msg}"),
        other => panic!("expected overflow rejection, got {other:?}"),
    }

    // a zero-sized tensor ([0] dims) is meaningless for inference
    let mut b = header_with(&[0]);
    b.extend_from_slice(&1u16.to_le_bytes());
    b.push(b'm');
    b.push(1); // ndim
    b.extend_from_slice(&0u32.to_le_bytes());
    let b = sealed(b);
    expect_protocol_err(decode_request(&b), "empty tensor");
}

#[test]
fn trailing_garbage_is_rejected() {
    let req = Request {
        model: "m".into(),
        input: Tensor::from_vec(vec![2], vec![1.0, 2.0]),
    };
    let mut b = body(&encode_request(&req));
    let crc_at = b.len() - 4;
    b.splice(crc_at..crc_at, [0xAA, 0xBB]); // extra payload bytes before the footer
    reseal(&mut b);
    match decode_request(&b) {
        Err(Error::Protocol(msg)) => assert!(msg.contains("trailing"), "{msg}"),
        other => panic!("expected trailing-bytes rejection, got {other:?}"),
    }
}

#[test]
fn hostile_length_prefixes_never_allocate() {
    // a length prefix past the cap is rejected before the body allocation
    let mut wire = Vec::new();
    wire.extend_from_slice(&((MAX_FRAME_BYTES as u32) + 1).to_le_bytes());
    wire.extend_from_slice(&[0u8; 16]);
    let mut reader = &wire[..];
    match read_frame(&mut reader) {
        Err(Error::Protocol(msg)) => assert!(msg.contains("cap"), "{msg}"),
        other => panic!("expected frame-cap rejection, got {other:?}"),
    }

    // a sub-minimum length prefix is equally hopeless
    let mut wire = Vec::new();
    wire.extend_from_slice(&3u32.to_le_bytes());
    wire.extend_from_slice(&[0u8; 3]);
    let mut reader = &wire[..];
    assert!(matches!(read_frame(&mut reader), Err(Error::Protocol(_))));

    // a prefix promising more bytes than the stream delivers is truncation
    let mut wire = Vec::new();
    wire.extend_from_slice(&64u32.to_le_bytes());
    wire.extend_from_slice(&[0u8; 10]); // only 10 of the promised 64
    let mut reader = &wire[..];
    match read_frame(&mut reader) {
        Err(Error::Protocol(msg)) => assert!(msg.contains("truncated"), "{msg}"),
        other => panic!("expected truncation rejection, got {other:?}"),
    }
}

#[test]
fn non_utf8_model_id_and_unknown_status_are_rejected() {
    let req = Request {
        model: "mm".into(),
        input: Tensor::from_vec(vec![1], vec![1.0]),
    };
    let mut b = body(&encode_request(&req));
    b[8] = 0xFF; // first model-id byte → invalid UTF-8
    b[9] = 0xFE;
    reseal(&mut b);
    expect_protocol_err(decode_request(&b), "non-UTF-8 model id");

    let resp = Response::failure(Status::Busy, "x");
    let mut b = body(&encode_response(&resp));
    b[6] = 200; // status byte nobody defined
    reseal(&mut b);
    match decode_response(&b) {
        Err(Error::Protocol(msg)) => assert!(msg.contains("status"), "{msg}"),
        other => panic!("expected status rejection, got {other:?}"),
    }
}

#[test]
fn live_server_survives_malformed_bytes_then_keeps_serving() {
    let mut reg = ModelRegistry::new();
    reg.insert("parent", models::mlp("parent", 4, &[8], 2, false, 3))
        .expect("admits");
    let mut handle = serve(
        reg,
        ServerConfig::default(),
        Arc::new(pv_obs::MonotonicClock::new()),
    )
    .expect("server starts");
    let addr = handle.addr().to_string();

    // 1. raw garbage with a plausible length prefix → server answers
    //    BadRequest (or closes) without dying
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut wire = Vec::new();
        wire.extend_from_slice(&16u32.to_le_bytes());
        wire.extend_from_slice(&[0x5A; 16]);
        stream.write_all(&wire).expect("write");
        stream.flush().expect("flush");
        let reply_body = read_frame(&mut stream)
            .expect("framed reply")
            .expect("one frame");
        let resp = decode_response(&reply_body).expect("decodable reply");
        assert_eq!(resp.status, Status::BadRequest);
    }

    // 2. a frame that stops mid-body (peer disappears) → server just
    //    drops the connection
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .write_all(&1024u32.to_le_bytes())
            .expect("prefix only");
        drop(stream);
    }

    // 3. well-formed clients still get answers afterwards
    let mut client = Client::connect(&addr, Duration::from_secs(10)).expect("connect");
    let out = client
        .infer(
            "parent",
            &Tensor::from_vec(vec![4], vec![0.1, 0.2, 0.3, 0.4]),
        )
        .expect("server still serving");
    assert_eq!(out.shape(), &[2]);
    handle.shutdown();
}

/// A bare `magic + version + kind…` header for hand-built bodies.
fn header_with(kind: &[u8]) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(b"PVSR");
    b.push(1);
    b.extend_from_slice(kind);
    b
}

/// Recomputes the CRC footer after tampering with body bytes (tests that
/// target *structural* checks must pass the integrity check first).
fn reseal(b: &mut [u8]) {
    let crc_at = b.len() - 4;
    let crc = pv_ckpt::crc32(&b[..crc_at]);
    b[crc_at..].copy_from_slice(&crc.to_le_bytes());
}

/// Appends a fresh CRC footer to a hand-built body (which has none yet).
fn sealed(mut b: Vec<u8>) -> Vec<u8> {
    let crc = pv_ckpt::crc32(&b);
    b.extend_from_slice(&crc.to_le_bytes());
    b
}

#[test]
fn write_then_read_recovers_multiple_frames() {
    // framing survives back-to-back frames on one stream
    let frames = [
        encode_request(&Request {
            model: "a".into(),
            input: Tensor::from_vec(vec![2], vec![1.0, 2.0]),
        }),
        encode_request(&Request {
            model: "b".into(),
            input: Tensor::from_vec(vec![3], vec![3.0, 4.0, 5.0]),
        }),
    ];
    let mut wire = Vec::new();
    for f in &frames {
        write_frame(&mut wire, f).expect("write");
    }
    let mut reader = &wire[..];
    for f in &frames {
        let body = read_frame(&mut reader).expect("read").expect("frame");
        assert_eq!(&body[..], &f[4..]);
    }
    assert!(read_frame(&mut reader).expect("eof").is_none());
}
