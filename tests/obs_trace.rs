//! Cross-crate observability integration: one globally installed recorder
//! must capture nested spans from core, nn, and tensor, plus the loss and
//! cache-hit counter series, for a real (smoke-scale) family build — the
//! same signal path `pruneval fig2 --trace out.json` exports.

use pruneval::{build_family_with, preset, ArtifactCache, FamilyBuildOptions, Scale};
use pv_obs::{FakeClock, Recorder};
use pv_prune::WeightThresholding;

#[test]
fn family_build_traces_across_crates() {
    // integration-test binaries are their own process: installing the
    // global recorder here cannot leak into other test binaries
    let rec = Recorder::new(FakeClock::stepping(1_000));
    assert!(pv_obs::install(rec.clone()), "first install wins");

    let mut cfg = preset("mlp", Scale::Smoke).expect("known preset");
    cfg.n_train = 128;
    cfg.n_test = 64;
    cfg.cycles = 2;
    let root = std::env::temp_dir().join("pv_obs_trace_test");
    std::fs::remove_dir_all(&root).ok();
    let cache = ArtifactCache::new(&root);
    let opts = FamilyBuildOptions {
        rep: 0,
        robust: None,
        cache: Some(&cache),
    };
    build_family_with(&cfg, &WeightThresholding, &opts).expect("cold build");
    build_family_with(&cfg, &WeightThresholding, &opts).expect("warm build");
    std::fs::remove_dir_all(&root).ok();

    let snap = rec.snapshot();
    let cats = snap.categories();
    for needed in ["core", "nn", "tensor", "ckpt"] {
        assert!(
            cats.contains(&needed),
            "missing category {needed}: {cats:?}"
        );
    }

    // spans genuinely nest: build_family (depth 0) holds train (nn) which
    // holds tensor kernel spans at greater depth
    let depth_of = |cat: &str, name: &str| {
        snap.spans
            .iter()
            .find(|s| s.cat == cat && s.name == name)
            .map(|s| s.depth)
    };
    assert_eq!(depth_of("core", "build_family"), Some(0));
    let train_depth = depth_of("nn", "train").expect("train span recorded");
    assert!(train_depth >= 1, "train nests under build_family");
    // kernel spans are labeled `matmul MxKxN [routine]` so traces
    // attribute time per selected GEMM routine
    let kernel = snap
        .spans
        .iter()
        .find(|s| s.cat == "tensor" && s.name.starts_with("matmul "))
        .expect("kernel span recorded");
    assert!(
        kernel.name.contains('x') && kernel.name.contains('['),
        "kernel span carries shape and routine: {}",
        kernel.name
    );
    assert!(kernel.depth > train_depth, "kernels nest under train");

    // counter series: training steps, plus cache misses on the cold build
    // and hits on the warm one
    let total = |name: &str| {
        snap.counters
            .get(name)
            .and_then(|series| series.last())
            .map_or(0.0, |&(_, v)| v)
    };
    assert!(total("train/steps") > 0.0, "train steps counted");
    assert!(total("ckpt/cache_miss") > 0.0, "cold build misses");
    assert!(total("ckpt/cache_hit") > 0.0, "warm build hits");
    assert!(
        snap.gauges.contains_key("train/loss"),
        "loss gauge recorded"
    );

    // the chrome-trace export carries all of it
    let chrome = snap.to_chrome_trace();
    for needle in [
        "\"cat\":\"tensor\"",
        "\"cat\":\"core\"",
        "\"cat\":\"nn\"",
        "train/loss",
        "ckpt/cache_hit",
    ] {
        assert!(chrome.contains(needle), "chrome trace missing {needle}");
    }
}
