//! Static shape checker vs. reality: for every zoo preset the shapes
//! propagated by `Network::infer_shapes` must agree with an actual forward
//! pass, and impossible inputs must be rejected *statically* (no
//! activations allocated).

use pruneval::{preset, Scale};
use pv_nn::models;
use pv_tensor::Error;

const PRESETS: &[&str] = &[
    "resnet20",
    "resnet56",
    "resnet110",
    "vgg16",
    "wrn16-8",
    "densenet22",
    "resnet18",
    "resnet101",
    "mlp",
];

#[test]
fn every_preset_infers_shapes_matching_forward() {
    for name in PRESETS {
        let cfg = preset(name, Scale::Smoke).expect("known preset");
        let mut net = cfg.arch.build(&cfg.name, &cfg.task, 0);
        let report = net.infer_shapes().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!report.records.is_empty(), "{name}: no leaf layers");

        // the first leaf consumes the declared input shape
        assert_eq!(
            report.records[0].input,
            net.input_shape(),
            "{name}: first leaf input"
        );

        // the statically inferred output matches a real forward pass
        let inferred = report.output_shape().expect("nonempty report").to_vec();
        let logits = models::smoke_forward(&mut net, 2, 42);
        assert_eq!(
            &logits.shape()[1..],
            inferred.as_slice(),
            "{name}: inferred vs observed output shape"
        );
        assert_eq!(inferred[0], net.num_classes(), "{name}: class count");
    }
}

#[test]
fn segnet_inference_covers_dense_prediction_heads() {
    let mut net = models::mini_segnet("seg", (1, 8, 8), 3, 4, 1);
    let report = net.infer_shapes().expect("segnet shapes");
    let inferred = report.output_shape().expect("nonempty").to_vec();
    assert_eq!(inferred, vec![3, 8, 8]);
    let logits = models::smoke_forward(&mut net, 2, 7);
    assert_eq!(&logits.shape()[1..], inferred.as_slice());
}

#[test]
fn wrong_input_shapes_are_rejected_statically() {
    let cfg = preset("resnet20", Scale::Smoke).expect("known preset");
    let net = cfg.arch.build(&cfg.name, &cfg.task, 0);

    // wrong rank
    let err = net.infer_shapes_for(&[16]).unwrap_err();
    assert!(matches!(err, Error::ShapeMismatch { .. }), "{err:?}");

    // wrong channel count
    let mut shape = net.input_shape().to_vec();
    shape[0] += 1;
    let err = net.infer_shapes_for(&shape).unwrap_err();
    assert!(matches!(err, Error::ShapeMismatch { .. }), "{err:?}");

    // spatial size too small for an unpadded pooling window (the padded
    // resnet stem tolerates tiny inputs; vgg's 2x2 maxpool does not)
    let vgg = preset("vgg16", Scale::Smoke).expect("known preset");
    let vgg_net = vgg.arch.build(&vgg.name, &vgg.task, 0);
    let err = vgg_net.infer_shapes_for(&[vgg_net.input_shape()[0], 1, 1]);
    assert!(err.is_err(), "1x1 input must not fit a 2x2 maxpool");
}

#[test]
fn mlp_rejects_wrong_width_statically() {
    let mut net = models::mlp("m", 16, &[8], 4, false, 3);
    assert!(net.infer_shapes().is_ok());
    let err = net.infer_shapes_for(&[17]).unwrap_err();
    assert!(matches!(err, Error::ShapeMismatch { .. }), "{err:?}");
    let logits = models::smoke_forward(&mut net, 3, 9);
    assert_eq!(logits.shape(), &[3, 4]);
}
