//! Artifact-cache determinism: a warm `build_family` must perform zero
//! training steps and produce a family — and downstream metrics — bitwise
//! identical to the cold build that populated the cache.
//!
//! This file deliberately holds a single test: it reads the global
//! train-step counter as a before/after delta, which stays exact only
//! while no other test in the same binary trains concurrently.

use pruneval::{build_family_with, preset, ArtifactCache, Distribution, FamilyBuildOptions, Scale};
use pv_nn::{train_step_count, Network};
use pv_prune::WeightThresholding;

fn fingerprint(net: &mut Network) -> Vec<u32> {
    let mut bits = Vec::new();
    net.visit_params_named(&mut |_, p| {
        bits.extend(p.value.data().iter().map(|v| v.to_bits()));
        if let Some(m) = &p.mask {
            bits.extend(m.data().iter().map(|v| v.to_bits()));
        }
        if let Some(v) = &p.velocity {
            bits.extend(v.data().iter().map(|x| x.to_bits()));
        }
    });
    net.visit_buffers_named(&mut |_, b| bits.extend(b.iter().map(|v| v.to_bits())));
    bits
}

#[test]
fn warm_build_trains_zero_steps_and_is_bitwise_identical() {
    let cfg = preset("resnet20", Scale::Smoke).expect("known preset");
    let root = std::env::temp_dir().join("pv_cache_determinism_test");
    std::fs::remove_dir_all(&root).ok();
    let cache = ArtifactCache::new(&root);
    let opts = FamilyBuildOptions {
        rep: 0,
        robust: None,
        cache: Some(&cache),
    };

    let t0 = train_step_count();
    let mut cold = build_family_with(&cfg, &WeightThresholding, &opts).expect("cold build");
    let cold_steps = train_step_count() - t0;
    assert!(cold_steps > 0, "cold build must actually train");

    let t1 = train_step_count();
    let mut warm = build_family_with(&cfg, &WeightThresholding, &opts).expect("warm build");
    let warm_steps = train_step_count() - t1;
    assert_eq!(warm_steps, 0, "warm build must perform zero training steps");

    // every component of the family is bitwise identical
    assert_eq!(
        fingerprint(&mut warm.parent),
        fingerprint(&mut cold.parent),
        "parent"
    );
    assert_eq!(
        fingerprint(&mut warm.separate),
        fingerprint(&mut cold.separate),
        "separate"
    );
    assert_eq!(warm.pruned.len(), cold.pruned.len());
    for (i, (w, c)) in warm
        .pruned
        .iter_mut()
        .zip(cold.pruned.iter_mut())
        .enumerate()
    {
        assert_eq!(
            w.target_ratio.to_bits(),
            c.target_ratio.to_bits(),
            "cycle {i}"
        );
        assert_eq!(
            w.achieved_ratio.to_bits(),
            c.achieved_ratio.to_bits(),
            "cycle {i}"
        );
        assert_eq!(
            fingerprint(&mut w.network),
            fingerprint(&mut c.network),
            "cycle {i}"
        );
    }

    // ... and so are the metrics computed from it
    let cold_curve = cold.curve_on(&Distribution::Nominal, 1);
    let warm_curve = warm.curve_on(&Distribution::Nominal, 1);
    assert_eq!(
        warm_curve.unpruned_error_pct.to_bits(),
        cold_curve.unpruned_error_pct.to_bits()
    );
    let bits = |pts: &[(f64, f64)]| -> Vec<(u64, u64)> {
        pts.iter()
            .map(|(r, e)| (r.to_bits(), e.to_bits()))
            .collect()
    };
    assert_eq!(bits(&warm_curve.points), bits(&cold_curve.points));

    std::fs::remove_dir_all(&root).ok();
}
