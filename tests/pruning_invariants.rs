//! Cross-crate pruning invariants: every method, on both MLP and
//! convolutional networks.

use pv_nn::{models, Mode, Network};
use pv_prune::{all_methods, PruneContext, PruneMethod};
use pv_tensor::{Rng, Tensor};

fn ctx_for(method: &dyn PruneMethod, net: &Network, rng: &mut Rng) -> PruneContext {
    if method.is_data_informed() {
        let mut shape = vec![16];
        shape.extend_from_slice(net.input_shape());
        PruneContext::with_batch(Tensor::rand_uniform(&shape, 0.0, 1.0, rng))
    } else {
        PruneContext::data_free()
    }
}

fn nets() -> Vec<Network> {
    vec![
        models::mlp("mlp", 64, &[32, 16], 4, false, 1),
        models::mini_resnet("res", (1, 8, 8), 4, 4, 1, 2),
        models::mini_vgg("vgg", (1, 8, 8), 4, 2, 3),
        models::mini_densenet("dense", (1, 8, 8), 4, 4, 2, 4),
    ]
}

#[test]
fn every_method_prunes_every_architecture() {
    let mut rng = Rng::new(5);
    for method in all_methods() {
        for mut net in nets() {
            let name = net.name().to_string();
            let ctx = ctx_for(method.as_ref(), &net, &mut rng);
            method.prune(&mut net, 0.4, &ctx);
            let pr = net.prune_ratio();
            assert!(pr > 0.05, "{}/{name}: ratio {pr} too low", method.name());
            assert!(pr < 0.95, "{}/{name}: ratio {pr} too high", method.name());
            // the network still produces finite outputs
            let mut shape = vec![4];
            shape.extend_from_slice(net.input_shape());
            let x = Tensor::rand_uniform(&shape, 0.0, 1.0, &mut rng);
            assert!(
                net.forward(&x, Mode::Eval).all_finite(),
                "{}/{name}",
                method.name()
            );
        }
    }
}

#[test]
fn unstructured_methods_hit_exact_ratios() {
    let mut rng = Rng::new(6);
    for method in all_methods().iter().filter(|m| !m.is_structured()) {
        for target in [0.25, 0.5, 0.9] {
            let mut net = models::mlp("m", 64, &[64], 4, false, 7);
            let ctx = ctx_for(method.as_ref(), &net, &mut rng);
            method.prune(&mut net, target, &ctx);
            assert!(
                (net.prune_ratio() - target).abs() < 0.01,
                "{} at {target}: got {}",
                method.name(),
                net.prune_ratio()
            );
        }
    }
}

#[test]
fn repeated_pruning_compounds_relatively() {
    let mut rng = Rng::new(7);
    for method in all_methods() {
        let mut net = models::mlp("m", 64, &[64, 32], 4, true, 8);
        let ctx = ctx_for(method.as_ref(), &net, &mut rng);
        method.prune(&mut net, 0.3, &ctx);
        let first = net.prune_ratio();
        method.prune(&mut net, 0.3, &ctx);
        let second = net.prune_ratio();
        assert!(second > first, "{}: {first} -> {second}", method.name());
        assert!(second < 1.0);
    }
}

#[test]
fn structured_methods_leave_no_half_pruned_rows() {
    let mut rng = Rng::new(8);
    for method in all_methods().iter().filter(|m| m.is_structured()) {
        let mut net = models::mini_resnet("r", (1, 8, 8), 4, 4, 1, 9);
        let ctx = ctx_for(method.as_ref(), &net, &mut rng);
        method.prune(&mut net, 0.5, &ctx);
        net.visit_prunable(&mut |l| {
            if let Some(mask) = &l.weight().mask {
                let cols = l.unit_len();
                for r in 0..l.out_units() {
                    let row = &mask.data()[r * cols..(r + 1) * cols];
                    let nz = row.iter().filter(|&&v| v != 0.0).count();
                    assert!(
                        nz == 0 || nz == cols,
                        "{}/{}: row {r} partially masked ({nz}/{cols})",
                        method.name(),
                        l.label()
                    );
                }
            }
        });
    }
}

#[test]
fn pruning_zero_ratio_is_a_no_op() {
    let mut rng = Rng::new(9);
    for method in all_methods() {
        let mut net = models::mlp("m", 32, &[16], 4, false, 10);
        let before: Vec<f64> = net.layer_densities();
        let ctx = ctx_for(method.as_ref(), &net, &mut rng);
        method.prune(&mut net, 0.0, &ctx);
        assert_eq!(net.layer_densities(), before, "{}", method.name());
    }
}

#[test]
fn masked_coordinates_never_revive_through_training() {
    use pv_nn::{train, Schedule, TrainConfig};
    let mut rng = Rng::new(11);
    let x = Tensor::rand_uniform(&[64, 32], 0.0, 1.0, &mut rng);
    let y: Vec<usize> = (0..64).map(|i| i % 4).collect();
    for method in all_methods() {
        let mut net = models::mlp("m", 32, &[32], 4, false, 12);
        let ctx = ctx_for(method.as_ref(), &net, &mut rng);
        method.prune(&mut net, 0.5, &ctx);
        let masks_before: Vec<Option<Tensor>> = {
            let mut v = Vec::new();
            net.visit_prunable(&mut |l| v.push(l.weight().mask.clone()));
            v
        };
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 16,
            schedule: Schedule::constant(0.1),
            momentum: 0.9,
            nesterov: true,
            weight_decay: 1e-4,
            seed: 13,
        };
        train(&mut net, &x, &y, &cfg, None);
        let mut i = 0;
        net.visit_prunable(&mut |l| {
            if let Some(mask) = &masks_before[i] {
                for (j, &m) in mask.data().iter().enumerate() {
                    if m == 0.0 {
                        assert_eq!(
                            l.weight().value.data()[j],
                            0.0,
                            "{}: weight {j} revived",
                            method.name()
                        );
                    }
                }
            }
            i += 1;
        });
    }
}
