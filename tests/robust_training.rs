//! Integration tests of the Section 6 robust-training pipeline.

use pruneval::robust::{split_distributions, PAPER_SEVERITY};
use pruneval::{build_family, preset, RobustTraining, Scale};
use pv_data::CorruptionSplit;
use pv_prune::WeightThresholding;

fn smoke_cfg() -> pruneval::ExperimentConfig {
    let mut cfg = preset("mlp", Scale::Smoke)
        .expect("known preset")
        .with_epochs(12);
    cfg.n_train = 384;
    cfg.cycles = 3;
    cfg
}

#[test]
fn robust_family_builds_and_differs_from_nominal() {
    let cfg = smoke_cfg();
    let split = CorruptionSplit::paper_default();
    let robust = RobustTraining {
        split: &split,
        severity: PAPER_SEVERITY,
    };

    let mut nominal = build_family(&cfg, &WeightThresholding, 0, None);
    let mut robustly = build_family(&cfg, &WeightThresholding, 0, Some(&robust));

    // the augmentation must actually change the learned function
    let test = nominal.test_set.clone();
    let e_nom = pruneval::eval_error_pct(&mut nominal.parent, &test);
    let e_rob = pruneval::eval_error_pct(&mut robustly.parent, &test);
    assert_ne!(e_nom, e_rob, "augmentation had no effect at all");
    // and both still learn the task
    assert!(e_nom < 35.0, "nominal parent error {e_nom}%");
    assert!(e_rob < 45.0, "robust parent error {e_rob}%");
}

#[test]
fn robust_training_helps_on_trained_corruptions() {
    let mut cfg = smoke_cfg().with_epochs(24);
    cfg.n_train = 512;
    let split = CorruptionSplit::paper_default();
    let robust = RobustTraining {
        split: &split,
        severity: PAPER_SEVERITY,
    };
    let (train_dists, _) = split_distributions(&split);

    let mut nominal = build_family(&cfg, &WeightThresholding, 0, None);
    let mut robustly = build_family(&cfg, &WeightThresholding, 0, Some(&robust));

    // averaged over the corruption distributions seen in training, the
    // robust parent should do at least as well as the nominal parent
    let corr_dists = &train_dists[1..]; // skip Nominal
    let mut nom_err = 0.0;
    let mut rob_err = 0.0;
    for d in corr_dists {
        let ds = d.realize(&cfg.task, &nominal.test_set, 5);
        nom_err += pruneval::eval_error_pct(&mut nominal.parent, &ds);
        rob_err += pruneval::eval_error_pct(&mut robustly.parent, &ds);
    }
    // allow a small tolerance: at this scale augmentation halves the
    // effective clean-sample count (sum over 8 corruption distributions)
    assert!(
        rob_err <= nom_err + 4.0,
        "robust parent worse on trained corruptions: {rob_err} vs {nom_err}"
    );
}

#[test]
fn split_distributions_are_exclusive() {
    let split = CorruptionSplit::paper_default();
    let (train, test) = split_distributions(&split);
    use pruneval::Distribution;
    let names = |v: &[Distribution]| -> Vec<String> { v.iter().map(|d| d.label()).collect() };
    let tn = names(&train);
    let te = names(&test);
    for n in &tn {
        assert!(!te.contains(n), "distribution {n} on both sides");
    }
}
