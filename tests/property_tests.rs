//! Property-based tests (proptest) on the workspace's core invariants.

use proptest::prelude::*;
use pv_data::Corruption;
use pv_metrics::{fit_through_origin, keep_top_fraction, PruneAccuracyCurve};
use pv_nn::{models, Mode};
use pv_prune::{PruneContext, PruneMethod, WeightThresholding};
use pv_tensor::{matmul, Rng, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Matrix multiplication distributes over addition:
    /// (A + B)·C == A·C + B·C (up to float tolerance).
    #[test]
    fn matmul_distributes(seed in 0u64..1000, m in 1usize..6, k in 1usize..6, n in 1usize..6) {
        let mut rng = Rng::new(seed);
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let c = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
        let lhs = matmul(&a.add(&b), &c);
        let rhs = matmul(&a, &c).add(&matmul(&b, &c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    /// Softmax rows always form probability distributions, whatever the
    /// logits.
    #[test]
    fn softmax_is_a_distribution(seed in 0u64..1000, rows in 1usize..5, cols in 2usize..8, scale in 0.1f32..50.0) {
        let mut rng = Rng::new(seed);
        let logits = Tensor::rand_uniform(&[rows, cols], -scale, scale, &mut rng);
        let s = logits.softmax_rows();
        prop_assert!(s.all_finite());
        for r in 0..rows {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    /// Every corruption, at every severity, keeps images in [0, 1] and
    /// preserves shape.
    #[test]
    fn corruptions_stay_in_range(seed in 0u64..500, severity in 1u8..=5, idx in 0usize..16) {
        let mut rng = Rng::new(seed);
        let x = Tensor::rand_uniform(&[2, 1, 8, 8], 0.0, 1.0, &mut rng);
        let c = Corruption::ALL[idx];
        let y = c.apply_batch(&x, severity, &mut rng);
        prop_assert_eq!(y.shape(), x.shape());
        prop_assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Prune potential is monotone non-decreasing in delta for arbitrary
    /// measured curves.
    #[test]
    fn potential_monotone_in_delta(
        unpruned in 0.0f64..50.0,
        errs in proptest::collection::vec(0.0f64..100.0, 1..8),
    ) {
        let points: Vec<(f64, f64)> = errs
            .iter()
            .enumerate()
            .map(|(i, &e)| ((i + 1) as f64 / 10.0, e))
            .collect();
        let curve = PruneAccuracyCurve::new(unpruned, points);
        let mut last = -1.0;
        for delta in [0.0, 0.5, 1.0, 2.0, 5.0, 100.0] {
            let p = curve.prune_potential(delta);
            prop_assert!(p >= last);
            last = p;
        }
        // with unlimited slack everything qualifies
        prop_assert!((last - curve.points.last().unwrap().0).abs() < 1e-12);
    }

    /// WT prunes exactly the requested fraction (within one weight), and
    /// the mask invariant holds on every layer.
    #[test]
    fn wt_ratio_is_exact(seed in 0u64..200, ratio in 0.05f64..0.95) {
        let mut net = models::mlp("m", 16, &[16], 4, false, seed);
        WeightThresholding.prune(&mut net, ratio, &PruneContext::data_free());
        let total = net.prunable_param_count() as f64;
        prop_assert!((net.prune_ratio() - ratio).abs() <= 1.0 / total + 1e-9);
        net.visit_prunable(&mut |l| {
            if let Some(mask) = &l.weight().mask {
                for (i, &m) in mask.data().iter().enumerate() {
                    if m == 0.0 {
                        assert_eq!(l.weight().value.data()[i], 0.0);
                    }
                }
            }
        });
    }

    /// keep_top_fraction keeps exactly round(frac·n) pixels, all from the
    /// informative suffix of the ordering.
    #[test]
    fn keep_fraction_counts(n in 1usize..64, frac in 0.0f64..1.0) {
        let order: Vec<usize> = (0..n).collect();
        let keep = keep_top_fraction(&order, frac);
        let expect = ((frac * n as f64).round() as usize).min(n);
        prop_assert_eq!(keep.iter().filter(|&&k| k).count(), expect);
    }

    /// OLS through the origin recovers an exact linear relation regardless
    /// of the x grid.
    #[test]
    fn ols_recovers_exact_slope(slope in -10.0f64..10.0, xs in proptest::collection::vec(0.01f64..10.0, 2..12)) {
        let pts: Vec<(f64, f64)> = xs.iter().map(|&x| (x, slope * x)).collect();
        let fit = fit_through_origin(&pts, 50, 3);
        prop_assert!((fit.slope - slope).abs() < 1e-9);
    }

    /// Networks are pure functions at eval time: same input, same output.
    #[test]
    fn eval_forward_is_pure(seed in 0u64..100) {
        let mut net = models::mini_resnet("r", (1, 8, 8), 4, 2, 1, seed);
        let mut rng = Rng::new(seed ^ 0xF00);
        let x = Tensor::rand_uniform(&[2, 1, 8, 8], 0.0, 1.0, &mut rng);
        let a = net.forward(&x, Mode::Eval);
        let b = net.forward(&x, Mode::Eval);
        prop_assert_eq!(a, b);
    }
}
