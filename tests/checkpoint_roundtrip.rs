//! PVCK round-trip integration tests: every preset network — trained (so
//! batch-norm running statistics and momentum buffers are live), pruned
//! (so masks are installed), and retrained — must survive a serialize →
//! deserialize cycle bitwise, and damaged files must be rejected with the
//! right [`Error`] variant.

use pruneval::{preset, try_inputs_for, Error, Scale};
use pv_ckpt::{checkpoint_to_network, network_to_checkpoint, Checkpoint};
use pv_data::generate_split;
use pv_nn::{train, Mode, Network, TrainConfig};
use pv_prune::{PruneContext, PruneMethod, WeightThresholding};

const PRESETS: [&str; 9] = [
    "resnet20",
    "resnet56",
    "resnet110",
    "vgg16",
    "densenet22",
    "wrn16-8",
    "resnet18",
    "resnet101",
    "mlp",
];

/// Bit pattern of the complete serializable state: values, masks,
/// momentum, batch-norm running statistics.
fn fingerprint(net: &mut Network) -> Vec<u32> {
    let mut bits = Vec::new();
    net.visit_params_named(&mut |_, p| {
        bits.extend(p.value.data().iter().map(|v| v.to_bits()));
        if let Some(m) = &p.mask {
            bits.extend(m.data().iter().map(|v| v.to_bits()));
        }
        if let Some(v) = &p.velocity {
            bits.extend(v.data().iter().map(|x| x.to_bits()));
        }
    });
    net.visit_buffers_named(&mut |_, b| bits.extend(b.iter().map(|v| v.to_bits())));
    bits
}

/// A preset network with every kind of state populated: one training pass
/// (BN statistics + velocity), a pruning pass (masks), and a masked
/// retraining pass.
fn exercised_net(name: &str) -> (pruneval::ExperimentConfig, Network, pv_tensor::Tensor) {
    let cfg = preset(name, Scale::Smoke).unwrap_or_else(|| panic!("unknown preset {name}"));
    let seed = cfg.rep_seed(0);
    let (train_set, _) = generate_split(&cfg.task, 32, 8, seed);
    let mut net = cfg.arch.build(name, &cfg.task, seed);
    let x = try_inputs_for(&net, &train_set).expect("inputs fit");
    let y = train_set.labels();
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 16,
        seed,
        ..cfg.train.clone()
    };
    train(&mut net, &x, y, &tc, None);
    WeightThresholding.prune(&mut net, 0.5, &PruneContext::data_free());
    train(&mut net, &x, y, &tc, None);
    (cfg, net, x)
}

#[test]
fn every_preset_roundtrips_bitwise() {
    for name in PRESETS {
        let (cfg, mut net, x) = exercised_net(name);
        let before = fingerprint(&mut net);
        assert!(
            before.iter().any(|&b| b != 0),
            "{name}: exercised state is all zeros"
        );

        let bytes = network_to_checkpoint(&mut net).to_bytes();
        let restored = Checkpoint::from_bytes(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut fresh = cfg.arch.build(name, &cfg.task, cfg.rep_seed(0) ^ 0xFF);
        checkpoint_to_network(&restored, &mut fresh).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(fingerprint(&mut fresh), before, "{name}: state fingerprint");

        let a = net.forward(&x, Mode::Eval);
        let b = fresh.forward(&x, Mode::Eval);
        assert_eq!(
            a.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{name}: eval forward"
        );
    }
}

#[test]
fn truncated_files_are_rejected_with_corrupt_checkpoint() {
    let (_, mut net, _) = exercised_net("resnet20");
    let bytes = network_to_checkpoint(&mut net).to_bytes();
    for cut in [0, 1, 3, 7, bytes.len() / 2, bytes.len() - 1] {
        let err = Checkpoint::from_bytes(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, Error::CorruptCheckpoint(_)),
            "cut at {cut}: {err:?}"
        );
    }
}

#[test]
fn bit_flips_are_rejected_with_corrupt_checkpoint() {
    let (_, mut net, _) = exercised_net("mlp");
    let bytes = network_to_checkpoint(&mut net).to_bytes();
    for pos in [4, bytes.len() / 3, bytes.len() / 2, bytes.len() - 2] {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x10;
        let err = Checkpoint::from_bytes(&bad).unwrap_err();
        assert!(
            matches!(err, Error::CorruptCheckpoint(_)),
            "flip at {pos}: {err:?}"
        );
    }
}
