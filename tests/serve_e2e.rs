//! End-to-end serving tests: a real `pv-serve` server on a loopback
//! socket, driven by real TCP clients. These cover the contracts the
//! serving layer advertises in `ARCHITECTURE.md`:
//!
//! * a served response is bitwise identical to a direct in-process
//!   forward pass, regardless of `PV_NUM_THREADS` or how requests were
//!   coalesced into batches;
//! * admission errors (`UnknownModel`, shape mismatches) are answered as
//!   typed statuses without touching a worker;
//! * a full admission queue answers `Busy` instead of queueing unboundedly;
//! * an injected worker panic fails only its own batch — the server keeps
//!   answering afterwards;
//! * the loadgen harness measures a healthy server as all-`Ok`.

use pv_nn::{models, Mode};
use pv_serve::{
    loadgen, serve, BatchConfig, Client, LoadgenConfig, ModelRegistry, ServerConfig, Status,
};
use pv_tensor::par::set_thread_override;
use pv_tensor::{Rng, Tensor};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Thread-override tests must not interleave (the override is global).
static THREAD_LOCK: Mutex<()> = Mutex::new(());

const IN_DIM: usize = 12;
const CLASSES: usize = 4;

fn registry() -> ModelRegistry {
    let mut reg = ModelRegistry::new();
    reg.insert(
        "parent",
        models::mlp("parent", IN_DIM, &[24, 16], CLASSES, false, 11),
    )
    .expect("parent admits");
    reg.insert(
        "pruned",
        models::mlp("pruned", IN_DIM, &[24, 16], CLASSES, false, 47),
    )
    .expect("pruned admits");
    reg
}

fn sample(seed: u64) -> Tensor {
    let mut rng = Rng::new(seed);
    Tensor::rand_uniform(&[IN_DIM], -1.0, 1.0, &mut rng)
}

fn quick_server(cfg: ServerConfig) -> pv_serve::ServerHandle {
    serve(registry(), cfg, Arc::new(pv_obs::MonotonicClock::new())).expect("server starts")
}

#[test]
fn served_logits_match_direct_forward_bitwise() {
    let mut handle = quick_server(ServerConfig::default());
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr, Duration::from_secs(10)).expect("connect");

    let reference = registry();
    for seed in 0..6u64 {
        let x = sample(seed);
        for model in ["parent", "pruned"] {
            let served = client.infer(model, &x).expect("served logits");
            let direct = reference
                .get(model)
                .cloned()
                .expect("model registered")
                .forward(&x.clone().reshape(&[1, IN_DIM]), Mode::Eval)
                .reshape(&[CLASSES]);
            assert_eq!(served.shape(), direct.shape());
            let served_bits: Vec<u32> = served.data().iter().map(|v| v.to_bits()).collect();
            let direct_bits: Vec<u32> = direct.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(served_bits, direct_bits, "seed {seed} model {model}");
        }
    }
    handle.shutdown();
}

#[test]
fn responses_are_invariant_to_thread_count_and_batching() {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let inputs: Vec<Tensor> = (0..8).map(|s| sample(100 + s)).collect();

    let mut runs: Vec<Vec<Vec<u32>>> = Vec::new();
    for (threads, max_batch) in [(1, 1), (4, 8)] {
        set_thread_override(Some(threads));
        let mut handle = quick_server(ServerConfig {
            batch: BatchConfig {
                max_batch,
                batch_deadline: Duration::from_millis(2),
                queue_capacity: 64,
            },
            ..ServerConfig::default()
        });
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr, Duration::from_secs(10)).expect("connect");
        let mut bits = Vec::new();
        for x in &inputs {
            let out = client.infer("parent", x).expect("logits");
            bits.push(out.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>());
        }
        runs.push(bits);
        handle.shutdown();
        set_thread_override(None);
    }
    assert_eq!(
        runs[0], runs[1],
        "served logits must be bitwise identical across thread counts and batch shapes"
    );
}

#[test]
fn unknown_model_and_bad_shape_are_typed_rejections() {
    let mut handle = quick_server(ServerConfig::default());
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr, Duration::from_secs(10)).expect("connect");

    let resp = client
        .request("nonexistent", &sample(1))
        .expect("transport fine");
    assert_eq!(resp.status, Status::UnknownModel);

    let resp = client
        .request("parent", &Tensor::zeros(&[IN_DIM + 1]))
        .expect("transport fine");
    assert_eq!(resp.status, Status::BadRequest);
    assert!(resp.message.contains("shape"), "{}", resp.message);

    // the connection survives both rejections
    assert_eq!(
        client
            .infer("parent", &sample(2))
            .expect("still serving")
            .shape(),
        &[CLASSES]
    );
    handle.shutdown();
}

#[test]
fn injected_worker_fault_fails_only_its_batch() {
    let mut handle = quick_server(ServerConfig {
        fault_model: Some("pruned".into()),
        ..ServerConfig::default()
    });
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr, Duration::from_secs(10)).expect("connect");

    // request to the chaos model: its worker panics, the fault boundary
    // converts that into an Internal response
    let resp = client
        .request("pruned", &sample(3))
        .expect("transport fine");
    assert_eq!(resp.status, Status::Internal);

    // the pool keeps serving other models afterwards — repeatedly
    for seed in 0..4u64 {
        let out = client
            .infer("parent", &sample(seed))
            .expect("server survived the fault");
        assert_eq!(out.shape(), &[CLASSES]);
    }
    handle.shutdown();
}

#[test]
fn full_queue_answers_busy_not_hang() {
    // no workers draining fast enough: one worker, capacity 1, and a
    // deliberately slow drain via a long batch deadline on an idle model
    let mut handle = quick_server(ServerConfig {
        workers: 1,
        batch: BatchConfig {
            max_batch: 4,
            batch_deadline: Duration::from_millis(200),
            queue_capacity: 1,
        },
        ..ServerConfig::default()
    });
    let addr = handle.addr().to_string();

    // saturate: fire requests from several connections without waiting
    // for each other; at least one must bounce with Busy, none may hang
    let statuses: Arc<Mutex<Vec<Status>>> = Arc::new(Mutex::new(Vec::new()));
    let mut joins = Vec::new();
    for seed in 0..6u64 {
        let addr = addr.clone();
        let statuses = Arc::clone(&statuses);
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr, Duration::from_secs(10)).expect("connect");
            let resp = client
                .request("parent", &sample(seed))
                .expect("transport fine");
            statuses
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(resp.status);
        }));
    }
    for j in joins {
        j.join().expect("lane finishes");
    }
    let statuses = statuses.lock().unwrap_or_else(|e| e.into_inner());
    assert_eq!(statuses.len(), 6, "every request got an answer");
    assert!(
        statuses
            .iter()
            .all(|s| matches!(s, Status::Ok | Status::Busy)),
        "only Ok/Busy under saturation, got {statuses:?}"
    );
    handle.shutdown();
}

#[test]
fn loadgen_measures_a_healthy_server_as_all_ok() {
    let mut handle = quick_server(ServerConfig {
        batch: BatchConfig {
            max_batch: 8,
            batch_deadline: Duration::from_millis(1),
            queue_capacity: 256,
        },
        ..ServerConfig::default()
    });
    let addr = handle.addr().to_string();
    let inputs: Vec<Tensor> = (0..4).map(|s| sample(200 + s)).collect();
    let report = loadgen(
        &addr,
        &inputs,
        &LoadgenConfig {
            concurrency: 4,
            requests: 48,
            model: "parent".into(),
            io_timeout: Duration::from_secs(10),
        },
        Arc::new(pv_obs::MonotonicClock::new()),
    )
    .expect("loadgen runs");
    assert_eq!(report.requests, 48);
    assert_eq!(
        report.ok, 48,
        "healthy server answers everything: {report:?}"
    );
    assert_eq!(report.failed, 0);
    assert!(report.mean_batch >= 1.0);
    assert!(report.throughput_rps() > 0.0);
    handle.shutdown();
}

#[test]
fn shutdown_is_idempotent_and_rejects_new_work() {
    let mut handle = quick_server(ServerConfig::default());
    let addr = handle.addr().to_string();
    handle.shutdown();
    handle.shutdown(); // second call is a no-op

    // after shutdown the port no longer answers PVSR
    let outcome = Client::connect(&addr, Duration::from_millis(500))
        .and_then(|mut c| c.request("parent", &sample(9)));
    assert!(outcome.is_err(), "stopped server must not answer");
}
