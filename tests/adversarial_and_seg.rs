//! Integration tests for the extension arms: adversarial evaluation of
//! pruned families and the dense-prediction pipeline.

use pruneval::{build_family, build_seg_family, inputs_for, preset, Scale, SegExperimentConfig};
use pv_metrics::{fgsm, fgsm_error_pct, pgd};
use pv_prune::WeightThresholding;

fn family() -> pruneval::StudyFamily {
    let mut cfg = preset("mlp", Scale::Smoke)
        .expect("known preset")
        .with_epochs(16);
    cfg.n_train = 512;
    cfg.cycles = 3;
    build_family(&cfg, &WeightThresholding, 0, None)
}

#[test]
fn fgsm_hurts_trained_classifier_more_than_clean_eval() {
    let mut fam = family();
    let test = fam.test_set.clone();
    let images = inputs_for(&fam.parent, &test);
    let labels = test.labels().to_vec();
    let clean = fam.parent.test_error_pct(&images, &labels, 128);
    let adv = fgsm_error_pct(&mut fam.parent, &images, &labels, 0.1);
    assert!(
        adv >= clean,
        "adversarial error {adv}% below clean {clean}%"
    );
}

#[test]
fn attacks_stay_in_budget_for_every_family_member() {
    let mut fam = family();
    let test = fam.test_set.clone();
    let images = inputs_for(&fam.parent, &test).slice_first_axis(0, 32);
    let labels = test.labels()[..32].to_vec();
    let eps = 0.08;
    for pm in &mut fam.pruned {
        let a = fgsm(&mut pm.network, &images, &labels, eps);
        assert!(a.max_abs_diff(&images) <= eps + 1e-6);
        let p = pgd(&mut pm.network, &images, &labels, eps, eps / 2.0, 3);
        assert!(p.max_abs_diff(&images) <= eps + 1e-6);
    }
}

#[test]
fn adversarial_examples_transfer_imperfectly() {
    // white-box examples against the parent should hurt the parent at
    // least as much as they hurt a heavily pruned sibling *or* vice versa —
    // either way the two errors must be comparable, not wildly divergent
    // (sanity on the attack's generality, not a paper claim)
    let mut fam = family();
    let test = fam.test_set.clone();
    let images = inputs_for(&fam.parent, &test);
    let labels = test.labels().to_vec();
    let adv = fgsm(&mut fam.parent, &images, &labels, 0.1);
    let parent_err = fam.parent.test_error_pct(&adv, &labels, 128);
    let pruned_err = fam.pruned[0].network.test_error_pct(&adv, &labels, 128);
    assert!(parent_err.is_finite() && pruned_err.is_finite());
    assert!((parent_err - pruned_err).abs() <= 100.0);
}

#[test]
fn seg_pipeline_prunes_and_keeps_predicting() {
    let mut cfg = SegExperimentConfig::voc_like(Scale::Smoke);
    cfg.n_train = 128;
    cfg.train.epochs = 8;
    cfg.cycles = 3;
    let mut study = build_seg_family(&cfg, &WeightThresholding);
    let curve = study.iou_curve(None, 1);
    // sparsity compounds across cycles
    assert!(study.pruned.last().expect("cycles ran").achieved_ratio > 0.7);
    // all errors are valid percentages
    assert!(curve
        .points
        .iter()
        .all(|&(_, e)| (0.0..=100.0).contains(&e)));
    // flop accounting moves with sparsity
    let fr = study.pruned.last().expect("cycles ran").flop_reduction;
    assert!(fr > 0.5, "flop reduction {fr}");
}
