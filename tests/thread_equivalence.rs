//! End-to-end serial-vs-parallel equivalence: forward passes, accuracy,
//! function distance, and prune-accuracy curves must be **bitwise
//! identical** at `PV_NUM_THREADS=1` and any higher thread count.

use pruneval::experiment::{build_family, StudyFamily};
use pruneval::{ArchSpec, Distribution, ExperimentConfig};
use pv_data::TaskSpec;
use pv_metrics::{confidence_heatmap, noise_similarity, SelectionMode};
use pv_nn::{models, Mode, Schedule, TrainConfig};
use pv_prune::WeightThresholding;
use pv_tensor::par::set_thread_override;
use pv_tensor::{Rng, Tensor};
use std::sync::Mutex;

/// Serializes tests in this binary around the process-wide thread override.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn assert_thread_count_invariant<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    set_thread_override(Some(1));
    let serial = f();
    for threads in [2, 4] {
        set_thread_override(Some(threads));
        let parallel = f();
        assert_eq!(serial, parallel, "divergence at {threads} threads");
    }
    set_thread_override(None);
}

fn quick_cfg() -> ExperimentConfig {
    ExperimentConfig {
        name: "par-eq".into(),
        arch: ArchSpec::Mlp {
            hidden: vec![16],
            batch_norm: false,
        },
        task: TaskSpec::tiny(),
        n_train: 64,
        n_test: 48,
        train: TrainConfig {
            epochs: 2,
            batch_size: 16,
            schedule: Schedule::constant(0.1),
            momentum: 0.9,
            nesterov: false,
            weight_decay: 1e-4,
            seed: 0,
        },
        cycles: 2,
        per_cycle_ratio: 0.5,
        repetitions: 1,
        delta_pct: 0.5,
        seed: 21,
    }
}

#[test]
fn network_forward_and_accuracy_are_thread_count_invariant() {
    let mut rng = Rng::new(31);
    let net = models::mini_resnet("r", (1, 12, 12), 5, 3, 1, 2);
    let x = Tensor::rand_uniform(&[9, 1, 12, 12], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..9).map(|i| i % 5).collect();

    assert_thread_count_invariant(|| {
        let mut n = net.clone();
        n.forward(&x, Mode::Eval)
    });
    assert_thread_count_invariant(|| {
        let mut n = net.clone();
        // batch of 2 forces the multi-batch parallel path
        n.accuracy(&x, &labels, 2).to_bits()
    });
}

#[test]
fn training_is_thread_count_invariant() {
    // Gradients flow through the parallel matmul/conv backward kernels;
    // identically seeded training must stay bit-for-bit reproducible.
    assert_thread_count_invariant(|| {
        let cfg = quick_cfg();
        let mut fam = build_family(&cfg, &WeightThresholding, 0, None);
        let x = pruneval::experiment::inputs_for(&fam.parent, &fam.test_set);
        fam.parent.forward(&x, Mode::Eval)
    });
}

#[test]
fn noise_similarity_is_thread_count_invariant() {
    let a = models::mlp("a", 12, &[16], 4, false, 3);
    let b = models::mlp("b", 12, &[16], 4, false, 91);
    let mut rng = Rng::new(17);
    let images = Tensor::rand_uniform(&[24, 12], 0.0, 1.0, &mut rng);
    assert_thread_count_invariant(|| {
        let (mut wa, mut wb) = (a.clone(), b.clone());
        let sim = noise_similarity(&mut wa, &mut wb, &images, 0.05, 4, &mut Rng::new(5));
        (sim.matching_predictions.to_bits(), sim.softmax_l2.to_bits())
    });
}

#[test]
fn confidence_heatmap_is_thread_count_invariant() {
    let base = models::mlp("m", 16, &[12], 3, false, 7);
    let mut rng = Rng::new(23);
    let images = Tensor::rand_uniform(&[5, 16], 0.0, 1.0, &mut rng);
    let labels = vec![0, 1, 2, 0, 1];
    assert_thread_count_invariant(|| {
        let mut models_vec = vec![
            ("a".to_string(), base.clone()),
            ("b".to_string(), base.clone()),
        ];
        let hm = confidence_heatmap(
            &mut models_vec,
            &images,
            &labels,
            0.25,
            SelectionMode::OneShot,
        );
        hm.matrix
            .iter()
            .map(|row| row.iter().map(|v| v.to_bits()).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    });
}

#[test]
fn prune_curves_are_thread_count_invariant() {
    // Build the family once (training invariance is covered above), then
    // sweep the evaluation grid under different thread counts.
    let cfg = quick_cfg();
    let fam = build_family(&cfg, &WeightThresholding, 0, None);
    let dists = [
        Distribution::Nominal,
        Distribution::Noise(0.1),
        Distribution::AltTestSet,
    ];
    assert_thread_count_invariant(|| {
        let mut f: StudyFamily = fam.clone();
        f.curves_on(&dists, 9)
            .into_iter()
            .map(|c| {
                (
                    c.unpruned_error_pct.to_bits(),
                    c.points
                        .iter()
                        .map(|(r, e)| (r.to_bits(), e.to_bits()))
                        .collect::<Vec<_>>(),
                )
            })
            .collect::<Vec<_>>()
    });
}
